// Command create-serve runs the evaluation-as-a-service daemon: an HTTP
// API over the experiment registry and the shared content-addressed
// Summary cache. Submit jobs, stream their progress, fetch rendered
// results, and inspect the cache — results are byte-identical to the
// equivalent create-bench invocation, and repeated submissions of the same
// (experiment, trials, seed) spec are served from cache without
// recomputing a single grid point.
//
//	create-serve -addr :8080 -cache-dir cache -workers 8 -jobs 2
//
//	curl -X POST localhost:8080/v1/jobs -d '{"experiment":"fig16","trials":48,"seed":2026}'
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/v1/jobs/job-1/events        # NDJSON progress
//	curl localhost:8080/v1/jobs/job-1/result        # rendered figure
//	curl localhost:8080/v1/jobs/job-1/timing        # per-stage timing record
//	curl localhost:8080/v1/cache/stats
//	curl localhost:8080/metrics                     # Prometheus exposition
//
// Every job records queued→planned→computed→rendered timestamps, and the
// /metrics endpoint exposes the service, cache, and per-stage latency
// families documented in docs/METRICS.md.
//
// On SIGINT/SIGTERM the daemon stops accepting submissions, drains every
// queued and running job, then shuts the listener down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "persist the content-addressed summary cache to this directory (empty = in-memory only)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "cap the disk cache at this many MiB, evicting least-recently-used entries (0 = unbounded)")
	cacheMaxResident := flag.Int("cache-max-resident", 200000, "cap the in-memory summary layer at this many grid points so daemon memory stays flat (0 = unbounded)")
	workers := flag.Int("workers", 0, "total core budget across concurrent jobs (0 = all cores)")
	jobs := flag.Int("jobs", 2, "concurrent job executors; the worker budget is split between them")
	queue := flag.Int("queue", 64, "bounded admission queue depth across all tenants; a full queue rejects submissions with 503 and a Retry-After hint")
	tenantQuota := flag.Int("tenant-quota", 0, "cap each tenant's queued+running jobs; over-quota submissions get 429 with a Retry-After hint (0 = unlimited)")
	finishedTTL := flag.Duration("finished-ttl", 0, "expire finished jobs this long after completion (0 = count cap only)")
	eventKeepalive := flag.Duration("event-keepalive", 0, "keepalive cadence on idle events streams so clients can detect hung connections (0 = 10s, negative disables)")
	enablePprof := flag.Bool("pprof", false, "expose /debug/pprof/ profiling handlers (CPU, heap, goroutine) on the service listener")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	store, err := cache.New(*cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opening cache %s: %v\n", *cacheDir, err)
		os.Exit(2)
	}
	if *cacheMaxMB > 0 {
		if err := store.SetMaxBytes(int64(*cacheMaxMB) << 20); err != nil {
			fmt.Fprintf(os.Stderr, "arming cache size cap: %v\n", err)
			os.Exit(2)
		}
	}
	store.SetMaxResident(*cacheMaxResident)
	env := experiments.NewEnv()
	env.Cache = store

	srv := service.New(service.Config{
		Env:               env,
		Store:             store,
		Workers:           *workers,
		MaxConcurrentJobs: *jobs,
		QueueDepth:        *queue,
		TenantQuota:       *tenantQuota,
		EventKeepalive:    *eventKeepalive,
		FinishedJobTTL:    *finishedTTL,
		Logger:            logger,
	})
	srv.Start()

	handler := srv.Handler()
	if *enablePprof {
		// Profiling stays opt-in: the daemon may face untrusted clients,
		// and pprof endpoints leak heap contents. Explicit registrations on
		// a wrapping mux (rather than the package's DefaultServeMux side
		// effect) keep the service routes untouched.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("listener failed", "error", err.Error())
			os.Exit(1)
		}
	}()
	logger.Info("create-serve listening", "addr", *addr, "cache_dir", *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: refuse new submissions and drain in-flight jobs
	// first (event streams then observe terminal states), close the
	// listener after.
	logger.Info("draining jobs")
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	st := store.Stats()
	logger.Info("cache summary", "hits", st.Hits, "misses", st.Misses, "resident", st.Resident)
}

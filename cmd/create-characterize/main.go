// Command create-characterize runs the Sec. 4 resilience characterization:
// planner/controller BER sweeps, per-component severities, activation
// profiles, subtask diversity, and stage-specific dynamics.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/embodiedai/create/internal/experiments"
)

func main() {
	trials := flag.Int("trials", 48, "episode repetitions per data point")
	seed := flag.Int64("seed", 2026, "base random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores, 1 = serial)")
	shardSel := flag.String("shard", "", "compute only sweep grid points of shard k/n (1-based, e.g. 2/3); output is partial until merged")
	cacheDir := flag.String("cache-dir", "", "persist the content-addressed summary cache to this directory (empty = in-memory only)")
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}
	shard, numShards, store, err := experiments.OpenShardedCache(*shardSel, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.Shard, opt.NumShards = shard, numShards
	env := experiments.NewEnv()
	env.Cache = store

	experiments.RenderResilience(os.Stdout,
		"Planner resilience (Fig 5a/b): success plunges near BER 2e-8",
		experiments.Fig5Planner(env, opt))
	experiments.RenderResilience(os.Stdout,
		"\nController resilience (Fig 5c/d): knee near BER 1e-4",
		experiments.Fig5Controller(env, opt))

	fmt.Println("\nPer-component severity (Fig 5e-h): pre-norm components are fragile")
	for _, c := range experiments.Fig5Components(opt) {
		fmt.Printf("  %-10s %-5s high-bit severity %.4f\n", c.Model, c.Component, c.HighBitSeverity)
	}

	fmt.Println("\nActivation profiles (Fig 5i-l)")
	for _, a := range experiments.Fig5Activations(opt) {
		fmt.Printf("  %-10s absmax %7.2f std %6.2f | norm sigma %6.2f -> %6.2f under an in-range fault\n",
			a.Model, a.AbsMax, a.Std, a.SigmaClean, a.SigmaFaulty)
	}

	experiments.RenderResilience(os.Stdout,
		"\nSubtask diversity (Fig 6): chains collapse abruptly, stochastic tasks degrade gradually",
		experiments.Fig6Subtasks(env, opt))

	fmt.Println("\nStage dynamics (Fig 7)")
	for _, s := range experiments.Fig7Stages(env, opt) {
		fmt.Printf("  %-9s mean entropy %.2f (%4.1f%% of steps)\n", s.Phase, s.MeanEntropy, s.Fraction*100)
	}
	for _, s := range experiments.Fig7PhaseInjection(env, opt, 0.5) {
		fmt.Printf("  corrupting %-9s steps only: success %5.1f%%, avg steps %.0f\n",
			s.Phase, s.SuccessRate*100, s.AvgSteps)
	}
}

// Command create-characterize runs the Sec. 4 resilience characterization:
// planner/controller BER sweeps, per-component severities, activation
// profiles, subtask diversity, and stage-specific dynamics. It dispatches
// the characterization figures (fig5, fig6, fig7) through the same typed
// registry as create-bench and create-serve, sharing their content-
// addressed cache entries.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/registry"
)

// characterizationSet is the Sec. 4 slice of the registry.
var characterizationSet = []string{"fig5", "fig6", "fig7"}

func main() {
	trials := flag.Int("trials", 48, "episode repetitions per data point")
	seed := flag.Int64("seed", 2026, "base random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores, 1 = serial)")
	shardSel := flag.String("shard", "", "compute only sweep grid points of shard k/n (1-based, e.g. 2/3); output is partial until merged")
	cacheDir := flag.String("cache-dir", "", "persist the content-addressed summary cache to this directory (empty = in-memory only)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "cap the disk cache at this many MiB, evicting least-recently-used entries (0 = unbounded)")
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}
	shard, numShards, store, err := experiments.OpenShardedCache(*shardSel, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.Shard, opt.NumShards = shard, numShards
	if *cacheMaxMB > 0 {
		if err := store.SetMaxBytes(int64(*cacheMaxMB) << 20); err != nil {
			fmt.Fprintf(os.Stderr, "arming cache size cap: %v\n", err)
			os.Exit(1)
		}
	}
	env := experiments.NewEnv()
	env.Cache = store

	for i, name := range characterizationSet {
		d, ok := registry.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (registered: %s)\n",
				name, strings.Join(registry.Names(), ", "))
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		d.Run(env, opt).Render(os.Stdout)
	}
}

// Command create-bench regenerates the paper's tables and figures on the
// simulated substrate. Experiments are dispatched through the typed
// registry (internal/registry) — the same descriptors the create-serve
// daemon executes, so CLI output and served results are byte-identical.
// Select an experiment with -exp (or run everything):
//
//	create-bench -exp fig16 -trials 100 -workers 8
//
// Monte-Carlo trials and sweep grid points fan out over -workers goroutines
// (0 = one per core) with deterministic, order-preserving aggregation, so
// -workers only changes wall-clock time, never the printed numbers.
//
// Sweeps reuse identical grid points through a content-addressed Summary
// cache: always in-process, and across runs/machines when -cache-dir is
// set (-cache-max-mb caps the directory, evicting least-recently-used
// entries). -plan probes the cache without running anything and prints,
// per experiment, how many grid points are already resident versus still
// to compute. -shard k/n partitions every sweep grid by stable point index
// (this process computes only its own points; the printed output is
// partial scaffolding), and -merge unions shard cache directories into
// -cache-dir before running, so a merged replay reproduces the unsharded
// output byte for byte:
//
//	create-bench -exp all -trials 8 -shard 2/3 -cache-dir out   # one of 3 shards
//	create-bench -exp all -trials 8 -merge s1,s2,s3 -cache-dir merged
//
// The shard/merge semantics live in internal/dispatch (shared with the
// distributed coordinator, cmd/create-coordinator); this command is a
// thin client of that package.
//
// Experiment identifiers follow the paper: fig1, fig4, fig5, fig6, fig7,
// fig8, fig9, fig10, fig12, fig13, fig14, fig15, fig16, fig17, fig18,
// fig19, fig20, fig21, table2, table3, table4, table5, table6.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/embodiedai/create/internal/dispatch"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1..fig21, table2..table6, all)")
	trials := flag.Int("trials", 48, "episode repetitions per data point")
	seed := flag.Int64("seed", 2026, "base random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores, 1 = serial); results are identical either way")
	shardSel := flag.String("shard", "", "compute only sweep grid points of shard k/n (1-based, e.g. 2/3); output is partial until merged")
	cacheDir := flag.String("cache-dir", "", "persist the content-addressed summary cache to this directory (empty = in-memory only)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "cap the disk cache at this many MiB, evicting least-recently-used entries (0 = unbounded)")
	merge := flag.String("merge", "", "comma-separated shard cache dirs to union into -cache-dir before running")
	plan := flag.Bool("plan", false, "plan only: probe the cache and print per-experiment points to compute, without running")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	flag.Parse()

	l, err := dispatch.OpenLocal(*shardSel, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *merge != "" {
		n, err := l.MergeShardDirs(strings.Split(*merge, ",")...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merging shard caches: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged %d cache entries into %s\n", n, *cacheDir)
	}
	// Arm the size cap after any merge: the cap scans the directory, so
	// merged-in entries are indexed and the cap is enforced over them too.
	if err := l.LimitDisk(*cacheMaxMB); err != nil {
		fmt.Fprintf(os.Stderr, "arming cache size cap: %v\n", err)
		os.Exit(1)
	}

	selection, err := dispatch.Selection(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := l.Options(*trials, *seed, *workers)

	// Profiling hooks: future hot-path work starts from a profile of the
	// real sweep, not a guess (see PERFORMANCE.md for the workflow). Armed
	// only now — past every setup error that os.Exits — so an aborted run
	// cannot leave a truncated, trailer-less profile behind.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating cpu profile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting cpu profile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle retained heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing mem profile: %v\n", err)
			}
		}()
	}

	if *plan {
		l.RenderPlans(os.Stdout, selection, opt)
		return
	}

	defer func() {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d points resident\n",
			l.Store.Hits(), l.Store.Misses(), l.Store.Len())
	}()
	l.Run(os.Stdout, selection, opt, *exp == "all")
}

// Command create-bench regenerates the paper's tables and figures on the
// simulated substrate. Select an experiment with -exp (or run everything):
//
//	create-bench -exp fig16 -trials 100 -workers 8
//
// Monte-Carlo trials and sweep grid points fan out over -workers goroutines
// (0 = one per core) with deterministic, order-preserving aggregation, so
// -workers only changes wall-clock time, never the printed numbers.
//
// Sweeps reuse identical grid points through a content-addressed Summary
// cache: always in-process, and across runs/machines when -cache-dir is
// set. -shard k/n partitions every sweep grid by stable point index (this
// process computes only its own points; the printed output is partial
// scaffolding), and -merge unions shard cache directories into -cache-dir
// before running, so a merged replay reproduces the unsharded output byte
// for byte:
//
//	create-bench -exp all -trials 8 -shard 2/3 -cache-dir out   # one of 3 shards
//	create-bench -exp all -trials 8 -merge s1,s2,s3 -cache-dir merged
//
// Experiment identifiers follow the paper: fig1, fig4, fig5, fig6, fig7,
// fig8, fig9, fig10, fig12, fig13, fig14, fig15, fig16, fig17, fig18,
// fig19, fig20, fig21, table2, table3, table4, table5, table6.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/world"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1..fig21, table2..table6, all)")
	trials := flag.Int("trials", 48, "episode repetitions per data point")
	seed := flag.Int64("seed", 2026, "base random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores, 1 = serial); results are identical either way")
	shardSel := flag.String("shard", "", "compute only sweep grid points of shard k/n (1-based, e.g. 2/3); output is partial until merged")
	cacheDir := flag.String("cache-dir", "", "persist the content-addressed summary cache to this directory (empty = in-memory only)")
	merge := flag.String("merge", "", "comma-separated shard cache dirs to union into -cache-dir before running")
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}
	shard, numShards, store, err := experiments.OpenShardedCache(*shardSel, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.Shard, opt.NumShards = shard, numShards
	if *merge != "" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "-merge requires -cache-dir as the destination")
			os.Exit(2)
		}
		n, err := cache.MergeDirs(*cacheDir, strings.Split(*merge, ",")...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merging shard caches: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged %d cache entries into %s\n", n, *cacheDir)
	}
	env := experiments.NewEnv()
	env.Cache = store
	defer func() {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d points resident\n",
			store.Hits(), store.Misses(), store.Len())
	}()

	runners := map[string]func(){
		"fig1":   func() { fig1(env, opt) },
		"fig4":   func() { fig4(env, opt) },
		"fig5":   func() { fig5(env, opt) },
		"fig6":   func() { fig6(env, opt) },
		"fig7":   func() { fig7(env, opt) },
		"fig8":   func() { fig8(opt) },
		"fig9":   func() { fig9(opt) },
		"fig10":  func() { fig10(opt) },
		"fig12":  func() { fig12() },
		"fig13":  func() { fig13(env, opt) },
		"fig14":  func() { fig14(opt) },
		"fig15":  func() { fig15(env, opt) },
		"fig16":  func() { fig16(env, opt) },
		"fig17":  func() { fig17(env, opt) },
		"fig18":  func() { fig18(env, opt) },
		"fig19":  func() { fig19(env, opt) },
		"fig20":  func() { fig20(env, opt) },
		"fig21":  func() { fig21() },
		"table2": func() { table2() },
		"table3": func() { table3() },
		"table4": func() { table4() },
		"table5": func() { table5(env, opt) },
		"table6": func() { table6(env, opt) },
	}

	if *exp == "all" {
		keys := make([]string, 0, len(runners))
		for k := range runners {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("\n===== %s =====\n", strings.ToUpper(k))
			runners[k]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run()
}

func fig1(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 1(b): BER vs operating voltage")
	for _, p := range experiments.Fig1b(env) {
		fmt.Printf("  %.2f V -> BER %.2e\n", p.Voltage, p.BER)
	}
	fmt.Println("Fig 1(c)/(d): stone task degradation under controller BER")
	pts := experiments.Fig5Controller(env, opt)
	experiments.RenderResilience(os.Stdout, "", pts)
}

func fig4(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 4(a): per-bit timing error rate (bits 12..23)")
	for _, p := range experiments.Fig4a(env) {
		if p.Bit >= 12 && p.Bit%2 == 1 {
			fmt.Printf("  V=%.2f bit=%2d rate=%.2e\n", p.Voltage, p.Bit, p.Rate)
		}
	}
	r := experiments.Fig4b(env, opt)
	fmt.Printf("Fig 4(b): clean |max|=%.2f, median error=%.2f, %.0f%% of errors exceed the data range\n",
		r.CleanAbsMax, r.ErrorAbsMedian, r.LargeErrorFrac*100)
}

func fig5(env *experiments.Env, opt experiments.Options) {
	experiments.RenderResilience(os.Stdout, "Fig 5(a)/(b): planner resilience",
		experiments.Fig5Planner(env, opt))
	experiments.RenderResilience(os.Stdout, "Fig 5(c)/(d): controller resilience",
		experiments.Fig5Controller(env, opt))
	fmt.Println("Fig 5(e)-(h): per-component high-bit severity (miniatures)")
	for _, c := range experiments.Fig5Components(opt) {
		fmt.Printf("  %-10s %-5s %.4f\n", c.Model, c.Component, c.HighBitSeverity)
	}
	fmt.Println("Fig 5(i)-(l): activations and normalization skew")
	for _, a := range experiments.Fig5Activations(opt) {
		fmt.Printf("  %-10s absmax=%7.2f std=%6.2f | sigma %6.2f -> %6.2f under one in-range fault\n",
			a.Model, a.AbsMax, a.Std, a.SigmaClean, a.SigmaFaulty)
	}
}

func fig6(env *experiments.Env, opt experiments.Options) {
	experiments.RenderResilience(os.Stdout, "Fig 6: subtask resilience diversity",
		experiments.Fig6Subtasks(env, opt))
}

func fig7(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 7: stage profile (clean log episodes)")
	for _, s := range experiments.Fig7Stages(env, opt) {
		fmt.Printf("  %-9s mean entropy %.2f (%.0f%% of steps)\n", s.Phase, s.MeanEntropy, s.Fraction*100)
	}
	fmt.Println("Fig 7: phase-targeted corruption (q=0.5)")
	for _, s := range experiments.Fig7PhaseInjection(env, opt, 0.5) {
		fmt.Printf("  corrupt %-9s success %.0f%% avg steps %.0f\n", s.Phase, s.SuccessRate*100, s.AvgSteps)
	}
}

func fig8(opt experiments.Options) {
	p := experiments.Fig8GEMMProfile(opt)
	fmt.Printf("Fig 8(a): %.0f%% of GEMM outputs near zero; highest accumulator bit touched: %d of 23\n",
		p.FracNearZero*100, p.MaxAccBits)
}

func fig9(opt experiments.Options) {
	r := experiments.Fig9Rotation(opt)
	fmt.Printf("Fig 9(b): residual absmax %.1f -> %.1f, std %.2f -> %.2f (output drift %.2e)\n",
		r.AbsMaxBefore, r.AbsMaxAfter, r.StdBefore, r.StdAfter, r.OutputDrift)
}

func fig10(opt experiments.Options) {
	trace, phases := experiments.Fig10EntropyCurve(opt, world.TaskLog)
	fmt.Println("Fig 10: entropy curve (first 120 steps; E=execute A=approach X=explore)")
	for i := 0; i < len(trace) && i < 120; i += 4 {
		tag := map[world.Phase]string{world.PhaseExplore: "X", world.PhaseApproach: "A", world.PhaseExecute: "E"}[phases[i]]
		fmt.Printf("  step %3d %s entropy %.2f\n", i, tag, trace[i])
	}
}

func fig12() {
	fmt.Println("Fig 12(c): area/power breakdown")
	for _, r := range experiments.Fig12Breakdown() {
		fmt.Printf("  %-9s %7.2f mm^2  %s W\n", r.Block, r.AreaMM2, r.PowerW)
	}
	wf := experiments.Fig12Waveforms()
	fmt.Printf("Fig 12(d)/(e): waveform with %d samples, %.0f ns span\n", len(wf), wf[len(wf)-1].TimeNS)
}

func fig13(env *experiments.Env, opt experiments.Options) {
	pl, ctl := experiments.Fig13AD(env, opt)
	renderProt("Fig 13(a): AD on planner", pl)
	renderProt("Fig 13(b): AD on controller", ctl)
	renderProt("Fig 13(c): WR on planner", experiments.Fig13WR(env, opt))
	renderProt("Fig 13(e): AD+WR ablation", experiments.Fig13AblationPlanner(env, opt))
	fmt.Println("Fig 13(d)/(f): voltage scaling")
	for _, p := range experiments.Fig13VS(env, opt) {
		fmt.Printf("  %-7s AD=%-5v policy=%-6s success %5.1f%%  Veff %.3f  E %.2f J\n",
			p.Task, p.AD, p.Policy, p.SuccessRate*100, p.EffectiveVoltage, p.EnergyJ)
	}
}

func renderProt(title string, pts []experiments.ProtectionPoint) {
	fmt.Println(title)
	for _, p := range pts {
		fmt.Printf("  %-7s %-5s BER %.1e success %5.1f%% steps %6.0f\n",
			p.Task, p.Protection, p.BER, p.SuccessRate*100, p.AvgSteps)
	}
}

func fig14(opt experiments.Options) {
	res := experiments.Fig14Predictor(opt, experiments.QuickPredictorScale())
	fmt.Printf("Fig 14(a): predictor %d params, %d frames, %d epochs -> test MSE %.3f, R^2 %.3f\n",
		res.ParamCount, res.TrainFrames, res.Epochs, res.TestMSE, res.R2)
	fmt.Printf("  (noisy-oracle proxy used in task sims: R^2 %.3f)\n",
		experiments.OracleR2(opt, 0.34, 2000))
	fmt.Println("Fig 14(b): runtime tracking (every 20th step)")
	for _, p := range experiments.Fig14Tracking(opt, 200, policy.Default.Func()) {
		if p.Step%20 == 0 {
			fmt.Printf("  step %3d true %.2f pred %.2f -> %.2f V\n", p.Step, p.Entropy, p.Predicted, p.Voltage)
		}
	}
}

func fig15(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 15: voltage update interval")
	for _, p := range experiments.Fig15Interval(env, opt) {
		fmt.Printf("  %-7s interval %2d success %5.1f%% energy %.2f J\n",
			p.Task, p.Interval, p.SuccessRate*100, p.EnergyJ)
	}
}

func fig16(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 16(a): reliability at 0.75 V")
	for _, p := range experiments.Fig16Reliability(env, opt) {
		fmt.Printf("  %-9s %-9s success %5.1f%% steps %6.0f energy %.2f J\n",
			p.Task, p.Config, p.SuccessRate*100, p.AvgSteps, p.EnergyJ)
	}
	fmt.Println("Fig 16(b): minimal-voltage efficiency")
	pts := experiments.Fig16Efficiency(env, opt)
	for _, p := range pts {
		fmt.Printf("  %-9s %-9s Vmin %.3f energy %.2f J saving %5.1f%%\n",
			p.Task, p.Config, p.MinVoltage, p.EnergyJ, p.SavingVsNominal*100)
	}
	for _, cfgName := range experiments.Fig16Configs {
		fmt.Printf("  average saving %-9s: %5.1f%%\n", cfgName, experiments.AverageSaving(pts, cfgName)*100)
	}
}

func fig17(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 17: cross-platform savings")
	pts := experiments.Fig17CrossPlatform(env, opt)
	for _, p := range pts {
		fmt.Printf("  %-20s %-9s success %5.1f%% saving %5.1f%%\n",
			p.Platform, p.Task, p.SuccessRate*100, p.Saving*100)
	}
	fmt.Printf("  planner average (AD+WR): %.1f%%\n",
		experiments.AverageSavingByClass(pts, platforms.PlannerClass)*100)
	fmt.Printf("  controller average (AD+VS): %.1f%%\n",
		experiments.AverageSavingByClass(pts, platforms.ControllerClass)*100)
}

func fig18(env *experiments.Env, opt experiments.Options) {
	pts := experiments.Fig17CrossPlatform(env, opt)
	pAvg := experiments.AverageSavingByClass(pts, platforms.PlannerClass)
	cAvg := experiments.AverageSavingByClass(pts, platforms.ControllerClass)
	fmt.Println("Fig 18: chip-level energy breakdown")
	var chipAvg float64
	rows := experiments.Fig18ChipEnergy(env.Power, pAvg, cAvg)
	for _, r := range rows {
		fmt.Printf("  %-20s compute share %5.1f%% -> chip saving %5.1f%%\n",
			r.Model, r.ComputeShare*100, r.ChipSaving*100)
		chipAvg += r.ChipSaving
	}
	chipAvg /= float64(len(rows))
	lo, hi := experiments.BatteryLifeRange(chipAvg)
	fmt.Printf("  battery life extension: %.0f%% to %.0f%%\n", lo*100, hi*100)
}

func fig19(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 19: uniform vs hardware error model (wooden)")
	for _, p := range experiments.Fig19ErrorModels(env, opt) {
		fmt.Printf("  %-10s %-8s BER %.1e success %5.1f%%\n", p.Target, p.Model, p.BER, p.SuccessRate*100)
	}
}

func fig20(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Fig 20: comparison with existing techniques")
	for _, p := range experiments.Fig20Baselines(env, opt) {
		fmt.Printf("  %-12s %-7s %.2f V success %5.1f%% energy %7.2f J\n",
			p.Technique, p.Task, p.Voltage, p.SuccessRate*100, p.EnergyJ)
	}
}

func fig21() {
	fmt.Println("Fig 21: entropy-to-voltage mapping policies")
	for _, m := range experiments.Fig21Policies() {
		fmt.Printf("  policy %s:", m.Name)
		for _, l := range m.Levels {
			fmt.Printf("  H>=%.1f -> %.2f V", l.MinEntropy, l.Voltage)
		}
		fmt.Println()
	}
}

func table2() {
	fmt.Println("Table 2: LDO specifications")
	for _, r := range experiments.Table2LDO() {
		fmt.Printf("  %-12s %s\n", r.Name, r.Value)
	}
}

func table3() {
	r := experiments.Table3Accelerator()
	fmt.Println("Table 3: accelerator performance (our cycle model)")
	fmt.Printf("  peak           %.1f TOPS/tile\n", r.PeakTOPS)
	fmt.Printf("  planner        %.2e MACs  latency %.2f ms\n", r.PlannerMACs, r.PlannerLatencyMS)
	fmt.Printf("  controller     %.2e MACs  latency %.0f us\n", r.ControllerMACs, r.ControllerLatencyUS)
	fmt.Printf("  predictor      %.2e MACs  latency %.2f us\n", r.PredictorMACs, r.PredictorLatencyUS)
	fmt.Printf("  switching      %.0f ns\n", r.SwitchingLatencyNS)
}

func table4() {
	fmt.Println("Table 4: model parameters and ops")
	for _, r := range experiments.Table4Models() {
		fmt.Printf("  %-20s %9.1f M params %9.1f GOps\n", r.Name, r.ParamsM, r.GOps)
	}
}

func table5(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Table 5: success rate vs repetitions (wooden, BER 1e-7)")
	for _, r := range experiments.Table5Repetitions(env, opt) {
		fmt.Printf("  n=%3d success %5.1f%% (95%% CI +-%.1f%%)\n", r.Repetitions, r.SuccessRate*100, r.CI95*100)
	}
}

func table6(env *experiments.Env, opt experiments.Options) {
	fmt.Println("Table 6: INT8 vs INT4 under AD+WR (stone)")
	for _, r := range experiments.Table6Quantization(env, opt) {
		fmt.Printf("  INT%d BER %.0e success %5.1f%%\n", int(r.Bits), r.BER, r.SuccessRate*100)
	}
}

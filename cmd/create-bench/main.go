// Command create-bench regenerates the paper's tables and figures on the
// simulated substrate. Experiments are dispatched through the typed
// registry (internal/registry) — the same descriptors the create-serve
// daemon executes, so CLI output and served results are byte-identical.
// Select an experiment with -exp (or run everything):
//
//	create-bench -exp fig16 -trials 100 -workers 8
//
// Monte-Carlo trials and sweep grid points fan out over -workers goroutines
// (0 = one per core) with deterministic, order-preserving aggregation, so
// -workers only changes wall-clock time, never the printed numbers.
//
// Sweeps reuse identical grid points through a content-addressed Summary
// cache: always in-process, and across runs/machines when -cache-dir is
// set (-cache-max-mb caps the directory, evicting least-recently-used
// entries). -plan probes the cache without running anything and prints,
// per experiment, how many grid points are already resident versus still
// to compute. -shard k/n partitions every sweep grid by stable point index
// (this process computes only its own points; the printed output is
// partial scaffolding), and -merge unions shard cache directories into
// -cache-dir before running, so a merged replay reproduces the unsharded
// output byte for byte:
//
//	create-bench -exp all -trials 8 -shard 2/3 -cache-dir out   # one of 3 shards
//	create-bench -exp all -trials 8 -merge s1,s2,s3 -cache-dir merged
//
// Experiment identifiers follow the paper: fig1, fig4, fig5, fig6, fig7,
// fig8, fig9, fig10, fig12, fig13, fig14, fig15, fig16, fig17, fig18,
// fig19, fig20, fig21, table2, table3, table4, table5, table6.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/registry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1..fig21, table2..table6, all)")
	trials := flag.Int("trials", 48, "episode repetitions per data point")
	seed := flag.Int64("seed", 2026, "base random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores, 1 = serial); results are identical either way")
	shardSel := flag.String("shard", "", "compute only sweep grid points of shard k/n (1-based, e.g. 2/3); output is partial until merged")
	cacheDir := flag.String("cache-dir", "", "persist the content-addressed summary cache to this directory (empty = in-memory only)")
	cacheMaxMB := flag.Int("cache-max-mb", 0, "cap the disk cache at this many MiB, evicting least-recently-used entries (0 = unbounded)")
	merge := flag.String("merge", "", "comma-separated shard cache dirs to union into -cache-dir before running")
	plan := flag.Bool("plan", false, "plan only: probe the cache and print per-experiment points to compute, without running")
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}
	shard, numShards, store, err := experiments.OpenShardedCache(*shardSel, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.Shard, opt.NumShards = shard, numShards
	if *merge != "" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "-merge requires -cache-dir as the destination")
			os.Exit(2)
		}
		n, err := cache.MergeDirs(*cacheDir, strings.Split(*merge, ",")...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merging shard caches: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged %d cache entries into %s\n", n, *cacheDir)
	}
	// Arm the size cap after any merge: SetMaxBytes scans the directory, so
	// merged-in entries are indexed and the cap is enforced over them too.
	if *cacheMaxMB > 0 {
		if err := store.SetMaxBytes(int64(*cacheMaxMB) << 20); err != nil {
			fmt.Fprintf(os.Stderr, "arming cache size cap: %v\n", err)
			os.Exit(1)
		}
	}
	env := experiments.NewEnv()
	env.Cache = store

	var selection []registry.Descriptor
	if *exp == "all" {
		selection = registry.All()
	} else {
		d, ok := registry.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (registered: %s, all)\n",
				*exp, strings.Join(registry.Names(), ", "))
			os.Exit(2)
		}
		selection = []registry.Descriptor{d}
	}

	if *plan {
		renderPlans(env, opt, selection)
		return
	}

	defer func() {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d points resident\n",
			store.Hits(), store.Misses(), store.Len())
	}()
	for _, d := range selection {
		if *exp == "all" {
			fmt.Printf("\n===== %s =====\n", strings.ToUpper(d.Name))
		}
		d.Run(env, opt).Render(os.Stdout)
	}
}

// renderPlans prints the cache-aware schedule: per experiment, the unique
// grid points its sweeps consult, how many are already in the cache, and
// how many a run would compute. "free" marks figures a run would serve
// entirely from cache.
func renderPlans(env *experiments.Env, opt experiments.Options, selection []registry.Descriptor) {
	fmt.Printf("%-8s %8s %8s %10s  %s\n", "exp", "points", "cached", "to-compute", "notes")
	for _, d := range selection {
		p := registry.PlanFor(d, env, opt)
		var notes []string
		if p.Free() {
			notes = append(notes, "free")
		}
		if p.Dynamic {
			notes = append(notes, "dynamic upper bound")
		}
		if p.Uncached {
			notes = append(notes, "has uncached work")
		}
		fmt.Printf("%-8s %8d %8d %10d  %s\n",
			d.Name, p.GridPoints, p.Cached, p.ToCompute, strings.Join(notes, ", "))
	}
}

// Command create-chaosproxy fronts one create-serve worker with a
// scripted failure-injecting reverse proxy — the chaos harness's
// standalone form, for e2e tests and operator fire drills against a
// live fleet:
//
//	create-serve -addr :8081 -cache-dir w1 &
//	create-chaosproxy -listen :9081 -target http://127.0.0.1:8081 \
//	    -script pass:10,drop:6,pass:-1 -admin :9091 &
//	create-coordinator -exp fig16 -cache-dir coord \
//	    -workers http://127.0.0.1:9081 > fig16.txt
//
// The script decides the fate of each proxied request in arrival order
// (see dispatch.ParseChaosScript): pass forwards, drop severs the
// connection, delay adds latency, error answers a Retry-After'd 503, and
// hang holds the connection until the client gives up. Deterministic by
// construction — the script IS the schedule — so tests can assert exact
// retry and probe counters afterwards.
//
// The -admin listener (kept separate so it can never be chaos'd like
// worker traffic) serves GET /chaos for stats and POST /chaos
// {"script": "..."} to swap the schedule mid-run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/embodiedai/create/internal/dispatch"
)

func main() {
	listen := flag.String("listen", ":9081", "address proxied worker traffic is served on")
	target := flag.String("target", "", "base URL of the create-serve worker to front (required)")
	script := flag.String("script", "pass:-1", "chaos phase script, e.g. pass:3,drop:4,delay:2:50ms,error:2,hang:1,pass:-1")
	admin := flag.String("admin", "", "optional address for the /chaos control surface (stats, mid-run script swaps)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "create-chaosproxy: -target is required (the worker to front)")
		os.Exit(2)
	}
	phases, err := dispatch.ParseChaosScript(*script)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create-chaosproxy: %v\n", err)
		os.Exit(2)
	}
	proxy, err := dispatch.NewChaosProxy(*target, phases)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create-chaosproxy: %v\n", err)
		os.Exit(2)
	}

	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create-chaosproxy: admin listener: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "create-chaosproxy: admin on http://%s/chaos\n", aln.Addr())
		go func() {
			if err := http.Serve(aln, proxy.Admin()); err != nil {
				fmt.Fprintf(os.Stderr, "create-chaosproxy: admin server: %v\n", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create-chaosproxy: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "create-chaosproxy: fronting %s on http://%s (script %q)\n",
		*target, ln.Addr(), *script)
	if err := http.Serve(ln, proxy); err != nil {
		fmt.Fprintf(os.Stderr, "create-chaosproxy: %v\n", err)
		os.Exit(1)
	}
}

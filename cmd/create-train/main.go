// Command create-train trains the entropy predictor (Sec. 5.3, Table 9) on
// frames generated from error-free episodes and reports the Fig. 14
// accuracy metrics.
package main

import (
	"flag"
	"fmt"

	"github.com/embodiedai/create/internal/entropy"
)

func main() {
	frames := flag.Int("frames", 8000, "training frames to generate")
	testFrames := flag.Int("test", 800, "held-out evaluation frames")
	epochs := flag.Int("epochs", 12, "training epochs")
	lr := flag.Float64("lr", 1.5e-3, "AdamW learning rate")
	seed := flag.Int64("seed", 9, "random seed")
	flag.Parse()

	fmt.Printf("generating %d train / %d test frames...\n", *frames, *testFrames)
	train := entropy.BuildDataset(*frames, *seed)
	test := entropy.BuildDataset(*testFrames, *seed+99991)

	p := entropy.NewPredictor(*seed + 7)
	fmt.Printf("predictor: %d parameters (Table 9 architecture)\n", p.ParamCount())

	cfg := entropy.TrainConfig{Epochs: *epochs, BatchSize: 16, LR: *lr, Seed: *seed}
	losses := entropy.Train(p, train, cfg)
	for i, l := range losses {
		fmt.Printf("epoch %2d  train MSE %.4f\n", i+1, l)
	}

	m := entropy.Evaluate(p, test)
	fmt.Printf("\nheld-out: MSE %.4f, R^2 %.4f (paper: MSE 9.96e-2, R^2 0.92 at 250k frames / 200 epochs)\n",
		m.MSE, m.R2)
}

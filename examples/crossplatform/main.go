// Cross-platform: apply AD+WR to the OpenVLA and RoboFlamingo planners and
// AD+VS to the Octo and RT-1 controllers on their respective benchmarks
// (Fig. 17), reporting per-task energy savings at preserved task quality.
package main

import (
	"fmt"

	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/platforms"
)

func main() {
	env := experiments.NewEnv()
	opt := experiments.Options{Trials: 40, Seed: 11}

	pts := experiments.Fig17CrossPlatform(env, opt)
	fmt.Println("platform              task       success   energy saving")
	for _, p := range pts {
		fmt.Printf("%-21s %-10s %5.1f%%    %5.1f%%\n",
			p.Platform, p.Task, p.SuccessRate*100, p.Saving*100)
	}
	fmt.Printf("\nplanner average (AD+WR):    %5.1f%%  (paper: 50.7%%)\n",
		experiments.AverageSavingByClass(pts, platforms.PlannerClass)*100)
	fmt.Printf("controller average (AD+VS): %5.1f%%  (paper: 39.3%%)\n",
		experiments.AverageSavingByClass(pts, platforms.ControllerClass)*100)
}

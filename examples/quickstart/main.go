// Quickstart: evaluate one task under nominal operation and under the full
// CREATE stack at an aggressive 0.75 V supply, and report the saving.
package main

import (
	"fmt"

	create "github.com/embodiedai/create"
)

func main() {
	sys := create.NewSystem()

	cfg := create.Nominal()
	cfg.Trials = 40
	baseline := sys.Run(create.TaskStone, cfg)

	full := create.Full(0.75)
	full.Trials = 40
	protected := sys.Run(create.TaskStone, full)

	fmt.Printf("task: %s\n", create.TaskStone)
	fmt.Printf("nominal 0.90 V : success %5.1f%%  avg steps %6.0f  energy %6.2f J\n",
		baseline.SuccessRate*100, baseline.AvgSteps, baseline.EnergyJ)
	fmt.Printf("CREATE @0.75 V : success %5.1f%%  avg steps %6.0f  energy %6.2f J (Veff %.3f)\n",
		protected.SuccessRate*100, protected.AvgSteps, protected.EnergyJ, protected.EffectiveVoltage)
	fmt.Printf("computational energy saving: %.1f%%\n", create.Saving(baseline, protected)*100)
}

// Voltage sweep: reproduce the core reliability-efficiency trade-off of
// Fig. 1 and Fig. 16 — sweep the supply from nominal down to 0.65 V for the
// unprotected system and for the full CREATE stack, and find each task's
// minimal quality-preserving voltage.
package main

import (
	"fmt"

	create "github.com/embodiedai/create"
)

func main() {
	sys := create.NewSystem()

	fmt.Println("== supply sweep on wooden (40 trials per point) ==")
	fmt.Println("voltage   unprotected              CREATE (AD+WR+VS)")
	for _, v := range []float64{0.90, 0.85, 0.80, 0.75, 0.70, 0.65} {
		bare := create.Config{PlannerVoltage: v, ControllerVoltage: v, Trials: 40}
		prot := create.Full(v)
		prot.Trials = 40
		rb := sys.Run(create.TaskWooden, bare)
		rp := sys.Run(create.TaskWooden, prot)
		fmt.Printf("%.2f V    %5.1f%% / %6.2f J      %5.1f%% / %6.2f J\n",
			v, rb.SuccessRate*100, rb.EnergyJ, rp.SuccessRate*100, rp.EnergyJ)
	}

	fmt.Println("\n== minimal quality-preserving voltage per task (Fig 16b procedure) ==")
	for _, task := range []create.Task{create.TaskWooden, create.TaskStone, create.TaskCoal} {
		cfg := create.Full(0.90)
		cfg.Trials = 32
		vmin, nominal, best := sys.MinimalVoltage(task, cfg, 0.9)
		fmt.Printf("%-8s Vmin %.3f  success %5.1f%%  saving %5.1f%%\n",
			task, vmin, best.SuccessRate*100, create.Saving(nominal, best)*100)
	}
}

// Adaptive controller: run autonomy-adaptive voltage scaling with each of
// the six Fig. 21 policies and print the reliability-efficiency frontier,
// plus a live entropy/voltage trace (Fig. 10 / Fig. 14(b)).
package main

import (
	"fmt"
	"math"

	create "github.com/embodiedai/create"
	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/world"
)

func main() {
	sys := create.NewSystem()

	fmt.Println("== policies A-F on stone, AD enabled (Fig 13d) ==")
	for _, m := range create.Policies() {
		p := m
		cfg := create.Config{AD: true, VS: true, Policy: &p, Trials: 40}
		r := sys.Run(create.TaskStone, cfg)
		fmt.Printf("policy %s: success %5.1f%%  Veff %.3f  energy %6.2f J\n",
			m.Name, r.SuccessRate*100, r.EffectiveVoltage, r.EnergyJ)
	}

	fmt.Println("\n== entropy/voltage trace (log task, policy C) ==")
	m := create.Policies()[2]
	cfg := agent.Config{
		Task:        world.TaskLog,
		Controller:  sys.Controller,
		ControlProt: bridge.Protection{AD: true},
		UniformBER:  agent.VoltageMode,
		Timing:      sys.Timing,
		VSPolicy:    m.Func(),
		VSLevels:    m.VoltageLevels(),
		Trace:       true,
		Seed:        7,
	}
	r := agent.Run(cfg)
	for i := 0; i < len(r.EntropyTrace) && i < 160; i += 8 {
		bar := ""
		for j := 0.0; j < r.EntropyTrace[i]; j += 0.25 {
			bar += "#"
		}
		fmt.Printf("step %4d  H=%.2f %-18s V=%.2f (%s)\n",
			i, r.EntropyTrace[i], bar, r.VoltageTrace[i], r.PhaseTrace[i])
	}
	fmt.Printf("\nepisode: success=%v steps=%d effective voltage %.3f\n",
		r.Success, r.Steps, effV(r.StepsAtMV))
}

func effV(stepsAtMV map[int]int) float64 {
	var num float64
	n := 0
	for mv, c := range stepsAtMV {
		v := float64(mv) / 1000
		num += float64(c) * v * v
		n += c
	}
	if n == 0 {
		return 0.9
	}
	return math.Sqrt(num / float64(n))
}

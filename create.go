// Package create is the public facade of the CREATE reproduction:
// cross-layer resilience characterization and optimization for efficient yet
// reliable embodied AI systems (Xie et al., ASPLOS 2026).
//
// A System pairs an LLM-planner/RL-controller embodied agent with a
// voltage-scaled INT8 systolic accelerator. Three techniques co-optimize
// reliability and efficiency:
//
//   - AD: circuit-level anomaly detection and clearance,
//   - WR: model-level weight-rotation-enhanced planning,
//   - VS: application-level autonomy-adaptive voltage scaling.
//
// Quickstart:
//
//	sys := create.NewSystem()
//	baseline := sys.Run(create.TaskStone, create.Nominal())
//	protected := sys.Run(create.TaskStone, create.Full(0.75))
//	fmt.Printf("saving: %.1f%%\n", 100*create.Saving(baseline, protected))
//
// The full experiment suite behind every paper table and figure lives in
// internal/experiments and is exposed through cmd/create-bench.
package create

import (
	"github.com/embodiedai/create/internal/core"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/world"
)

// System is a configured embodied AI deployment. See core.System.
type System = core.System

// Config selects protections and supply voltages. See core.Config.
type Config = core.Config

// Report summarizes a task evaluation. See core.Report.
type Report = core.Report

// Task identifies an evaluation task (Table 10).
type Task = world.TaskName

// The nine Minecraft evaluation tasks.
const (
	TaskWooden   = world.TaskWooden
	TaskStone    = world.TaskStone
	TaskCharcoal = world.TaskCharcoal
	TaskChicken  = world.TaskChicken
	TaskCoal     = world.TaskCoal
	TaskIron     = world.TaskIron
	TaskWool     = world.TaskWool
	TaskSeed     = world.TaskSeed
	TaskLog      = world.TaskLog
)

// Tasks lists all evaluation tasks.
var Tasks = world.AllTasks

// NewSystem builds the default JARVIS-1-shaped system.
func NewSystem() *System { return core.NewSystem() }

// Nominal is the unprotected nominal-voltage configuration.
func Nominal() Config { return core.Nominal() }

// Full is the complete CREATE stack (AD+WR+VS) with supply ceiling v.
func Full(v float64) Config { return core.Full(v) }

// Saving is the fractional energy saving between two reports.
func Saving(from, to Report) float64 { return core.Saving(from, to) }

// Policy is an entropy-to-voltage mapping for voltage scaling.
type Policy = policy.Mapping

// Policies returns the paper's six selected mappings (Fig. 21), ordered
// conservative to aggressive; the default deployment uses Policy C.
func Policies() []Policy { return policy.Selected }
